// bench_serve — load generator for the serving runtime (src/runtime).
//
// Measures what the plan cache and conversion cache buy on
// repeated-workload traffic: the same request mix is driven through a
// server with both caches enabled ("cached") and with both bypassed
// ("bypass" — every request re-runs the SAGE search and re-converts its
// operands, the PR-2 one-shot behavior). Two phases per mode:
//
//   closed-loop  N client threads submit back-to-back -> max throughput
//   open-loop    a dispatcher fires requests on a fixed schedule (the
//                same absolute rate for both modes, set from the cached
//                throughput) -> p50/p99 latency measured from the
//                *scheduled* arrival, so queue buildup in the slow mode
//                is charged to latency, not hidden (no coordinated
//                omission)
//
// A third comparison measures what request batching buys on top of warm
// caches: SpMV-heavy pipelined traffic (each client keeps a window of
// requests in flight against one operand — the many-readers-one-model
// serving shape) driven through BatchPolicy::kWindow vs kOff. Both cache
// modes above run with batching off so their numbers stay comparable to
// the recorded baseline.
//
// A fourth comparison measures what sharding buys at equal compute: the
// same pipelined SpMV traffic over eight operands driven through a
// four-shard ShardedServer (1 worker per shard) vs a single Server with
// four workers. Total worker count, caches, and batching are identical;
// only the number of queue/registry lock domains differs, so the ratio
// isolates the router (ISSUE-5 bar: sharding must not cost throughput,
// ratio >= 1.0; multi-core runners see the contention relief as > 1).
//
// A fifth comparison measures what the telemetry layer costs: the same
// cached pipelined SpMV traffic with full observability (metrics + a
// tracing ring) vs everything off. The ratio obs_on_over_off is the
// ISSUE-8 bar (>= 0.95 — telemetry must cost under 5% of cached-serving
// throughput) and is read by the CI perf-gate.
//
// A sixth comparison measures what the async device submission ring buys
// on a modeled offload backend (mint, simulate_latency on): one serving
// worker either blocks inside every device call — at most one job in
// flight — or submits its whole drained window into the ring and claims
// completions afterwards, overlapping the modeled device latency across
// the ring's executor threads. The ratio device_inflight_over_blocking
// is the ISSUE-9 bar (>= 1.2 — keeping >1 device job in flight per
// worker must buy real throughput) and is read by the CI perf-gate.
//
// Client-side latency is aggregated with obs::Histogram (the same
// log2-bucketed histogram the server exports), so quantiles are bucket
// upper bounds — quantized, allocation-free, and mergeable across client
// threads with no post-hoc sort. Queue-wait quantiles come straight from
// the server's own mt_serve_queue_wait_ns histogram.
//
// Output: human-readable table on stdout plus a JSON record (--out,
// default BENCH_serve.json) with per-mode throughput/latency/cache rates,
// the cached-over-bypass speedup the ISSUE-3 acceptance bar reads, the
// batched-over-unbatched speedup the ISSUE-4 bar (>=1.5x) reads, the
// sharded-over-unsharded speedup the ISSUE-5 bar reads, and the
// obs_on_over_off ratio the ISSUE-8 bar and the CI perf-gate read.
//
// Usage: bench_serve [--smoke] [--out FILE] [--clients N] [--requests N]
//                    [--workers N]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "exec/backend.hpp"
#include "exec/device_ring.hpp"
#include "obs/metrics.hpp"
#include "runtime/router.hpp"
#include "runtime/server.hpp"
#include "workloads/synth.hpp"

namespace {

using namespace mt;
using namespace mt::runtime;

struct Config {
  bool smoke = false;
  std::string out = "BENCH_serve.json";
  int clients = 4;
  int requests = 400;  // per client, closed-loop phase
  int workers = 2;
  int open_loop_requests = 200;
  int trials = 3;  // best-of-N closed-loop runs (noise defense)
  // Batching phase: SpMV-heavy pipelined traffic on one operand.
  int batch_window = 16;
  int spmv_outstanding = 8;   // in-flight requests per client
  int spmv_requests = 1500;   // per client
  // Sharding phase: the same pipelined SpMV traffic spread over several
  // operands, 4 shards x 1 worker vs 1 server x 4 workers.
  int shard_count = 4;
  int shard_operands = 8;
  int shard_requests = 1200;  // per client
  // Device phase: pipelined SpMV through the mint backend, async ring vs
  // blocking offload, 1 serving worker either way.
  int device_ring_workers = 4;
  int device_requests = 300;  // per client
  // Ring submission phase: direct DeviceRing microbench, batched
  // submit_all vs one submit() per job over drained windows.
  int ring_submit_windows = 2000;
  int ring_submit_window_size = 16;
};

struct Operands {
  std::vector<AnyMatrix> mats;
  std::vector<MatrixHandle> handles;
  AnyTensor tensor = AnyTensor(DenseTensor3(1, 1, 1));
  TensorHandle tensor_handle;
  std::vector<value_t> x;
  DenseMatrix spmm_b, mttkrp_b, mttkrp_c;
};

// Log2-bucketed quantiles (us) lifted from an obs::HistogramSnapshot of
// nanosecond samples.
struct Quantiles {
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;
};

Quantiles quantiles_us(const obs::HistogramSnapshot& s) {
  return {static_cast<double>(s.p50()) / 1e3,
          static_cast<double>(s.p95()) / 1e3,
          static_cast<double>(s.p99()) / 1e3};
}

// The server's own view of time spent queued, read from its exported
// mt_serve_queue_wait_ns histogram (cumulative over the server's life).
Quantiles queue_wait_quantiles(const std::vector<obs::MetricSnapshot>& snap) {
  for (const auto& m : snap) {
    if (m.name == "mt_serve_queue_wait_ns") return quantiles_us(m.hist);
  }
  return {};
}

struct ModeResult {
  double throughput_rps = 0.0;
  Quantiles closed, open, queue_wait;
  double open_rate_rps = 0.0;
  CountersSnapshot counters;
};

ServerOptions make_options(const Config& cfg, bool caches_on) {
  ServerOptions o;
  o.num_workers = cfg.workers;
  o.queue_capacity = 64;
  o.caches.use_plan_cache = caches_on;
  o.caches.use_conversion_cache = caches_on;
  // Batching off here: the cached/bypass numbers isolate what the caches
  // buy, and stay comparable to the recorded PR-3 baseline. The batching
  // phase below measures the batcher separately.
  o.batch.policy = BatchPolicy::kOff;
  // Modest accelerator model: the SAGE search space is identical to the
  // paper default's; only the pricing arithmetic inputs differ.
  o.accel.num_pes = 64;
  o.accel.pe_buffer_bytes = 128 * 4;
  return o;
}

Operands register_operands(Server& srv, bool smoke) {
  Operands ops;
  const index_t n = smoke ? 48 : 96;
  const double density = 0.04;
  const Format mcfs[] = {Format::kCSR, Format::kZVC, Format::kCOO,
                         Format::kRLC};
  for (int i = 0; i < 4; ++i) {
    const auto coo = synth_coo_matrix(
        n, n, static_cast<std::int64_t>(density * static_cast<double>(n * n)),
        40 + static_cast<std::uint64_t>(i));
    ops.mats.push_back(convert(AnyMatrix(coo), mcfs[i]));
    ops.handles.push_back(srv.register_matrix(ops.mats.back()));
  }
  ops.tensor = AnyTensor(synth_coo_tensor(16, 14, 12, smoke ? 80 : 250, 44));
  ops.tensor_handle = srv.register_tensor(ops.tensor);

  ops.x.assign(static_cast<std::size_t>(n), 1.0f);
  for (std::size_t i = 0; i < ops.x.size(); ++i) {
    ops.x[i] = 0.25f * static_cast<float>(i % 5);
  }
  const auto dense = [](index_t r, index_t c, std::uint64_t seed) {
    return synth_coo_matrix(r, c, r * c, seed).to_dense();
  };
  ops.spmm_b = dense(n, 16, 45);
  ops.mttkrp_b = dense(14, 8, 46);
  ops.mttkrp_c = dense(12, 8, 47);
  return ops;
}

// The repeated-traffic mix: SpMV- and SpMM-heavy with SpGEMM and MTTKRP
// seasoning, round-robin over the registered operands.
Request make_request(const Operands& ops, int seq) {
  Request r;
  const int roll = seq % 10;
  const std::size_t op = static_cast<std::size_t>(seq) % ops.handles.size();
  if (roll < 4) {
    r.kernel = Kernel::kSpMV;
    r.a = ops.handles[op];
    r.vec = ops.x;
  } else if (roll < 7) {
    r.kernel = Kernel::kSpMM;
    r.a = ops.handles[op];
    r.dense_b = ops.spmm_b;
  } else if (roll < 9) {
    r.kernel = Kernel::kSpGEMM;
    r.a = ops.handles[op];
    r.b = ops.handles[(op + 1) % ops.handles.size()];
  } else {
    r.kernel = Kernel::kMTTKRP;
    r.x = ops.tensor_handle;
    r.dense_b = ops.mttkrp_b;
    r.dense_c = ops.mttkrp_c;
  }
  return r;
}

// Closed-loop: each client thread submits back-to-back (one outstanding
// request per client). Returns throughput; client threads record
// end-to-end latency (ns) straight into the shared histogram — its
// per-thread shards make the concurrent writes contention-free.
double closed_loop(Server& srv, const Operands& ops, int clients,
                   int requests, obs::Histogram& lat_ns) {
  const auto t0 = now_ns();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < requests; ++i) {
        const auto ts = now_ns();
        auto fut = srv.submit(make_request(ops, c * requests + i));
        (void)fut.get();
        lat_ns.record(now_ns() - ts);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = static_cast<double>(now_ns() - t0) / 1e9;
  return static_cast<double>(clients) * static_cast<double>(requests) /
         wall_s;
}

// Open-loop: submit on a fixed schedule; latency runs from the scheduled
// arrival to response completion (collector drains in FIFO submit order,
// matching the server's FIFO queue).
void open_loop(Server& srv, const Operands& ops, double rate_rps,
               int requests, obs::Histogram& lat_ns) {
  std::vector<std::future<Response>> futs;
  std::vector<std::int64_t> scheduled;
  futs.reserve(static_cast<std::size_t>(requests));
  scheduled.reserve(static_cast<std::size_t>(requests));
  const auto interval_ns =
      static_cast<std::int64_t>(1e9 / std::max(rate_rps, 1.0));
  const auto start = now_ns();
  for (int i = 0; i < requests; ++i) {
    const auto due = start + static_cast<std::int64_t>(i) * interval_ns;
    while (now_ns() < due) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    scheduled.push_back(due);
    futs.push_back(srv.submit(make_request(ops, i)));
  }
  for (int i = 0; i < requests; ++i) {
    (void)futs[static_cast<std::size_t>(i)].get();
    lat_ns.record(now_ns() - scheduled[static_cast<std::size_t>(i)]);
  }
}

ModeResult run_mode(const Config& cfg, bool caches_on, double open_rate_rps) {
  Server srv(make_options(cfg, caches_on));
  const auto ops = register_operands(srv, cfg.smoke);

  // Best-of-N: a shared 1-core box can deschedule the whole process for
  // milliseconds; the best trial is the one least polluted by unrelated
  // load, and both modes get the same treatment.
  ModeResult r;
  for (int t = 0; t < cfg.trials; ++t) {
    obs::Histogram closed_lat;
    const double thr =
        closed_loop(srv, ops, cfg.clients, cfg.requests, closed_lat);
    if (thr > r.throughput_rps) {
      r.throughput_rps = thr;
      r.closed = quantiles_us(closed_lat.snapshot());
    }
  }

  // Open-loop phase on the same (now warmed) server, so the cached mode's
  // tail reflects steady-state cache hits, not first-touch misses. The
  // rate is either inherited (bypass runs at the cached mode's rate) or
  // derived from this mode's own measured throughput.
  r.open_rate_rps = open_rate_rps > 0.0
                        ? open_rate_rps
                        : std::max(r.throughput_rps * 0.5, 10.0);
  obs::Histogram open_lat;
  open_loop(srv, ops, r.open_rate_rps, cfg.open_loop_requests, open_lat);
  r.open = quantiles_us(open_lat.snapshot());

  r.queue_wait = queue_wait_quantiles(srv.metrics_snapshot());
  r.counters = srv.counters();
  srv.stop();
  return r;
}

// --- Batching phase ---

struct BatchModeResult {
  double throughput_rps = 0.0;
  Quantiles lat, queue_wait;
  CountersSnapshot counters;
  // Device phase only: the ring's in-flight high-water mark (0 elsewhere).
  std::int64_t ring_peak_in_flight = 0;
};

// Pipelined closed-loop: each client keeps `outstanding` SpMV requests in
// flight against one registered operand, so the queue head always holds
// coalescible work — the traffic shape request batching exists for.
// Latency is submit-to-completion per request.
double pipelined_spmv_loop(Server& srv, MatrixHandle h,
                           const std::vector<value_t>& x, int clients,
                           int outstanding, int requests,
                           obs::Histogram& lat_ns) {
  const auto t0 = now_ns();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::deque<std::pair<std::future<Response>, std::int64_t>> inflight;
      auto submit_one = [&] {
        Request r;
        r.kernel = Kernel::kSpMV;
        r.a = h;
        r.vec = x;
        inflight.emplace_back(srv.submit(std::move(r)), now_ns());
      };
      auto reap_one = [&] {
        auto [fut, ts] = std::move(inflight.front());
        inflight.pop_front();
        (void)fut.get();
        lat_ns.record(now_ns() - ts);
      };
      for (int i = 0; i < requests; ++i) {
        submit_one();
        if (static_cast<int>(inflight.size()) >= outstanding) reap_one();
      }
      while (!inflight.empty()) reap_one();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = static_cast<double>(now_ns() - t0) / 1e9;
  return static_cast<double>(clients) * static_cast<double>(requests) /
         wall_s;
}

BatchModeResult run_batch_mode(const Config& cfg, BatchPolicy policy) {
  ServerOptions o = make_options(cfg, /*caches_on=*/true);
  o.batch.policy = policy;
  o.batch.window = cfg.batch_window;
  Server srv(o);

  // One larger operand, SpMV-only traffic: the thousand-SpMVs-on-one-model
  // pattern. Density 0.04 plans SpMV onto a coalescible ACF (CSR).
  const index_t n = cfg.smoke ? 96 : 256;
  const auto coo = synth_coo_matrix(
      n, n, static_cast<std::int64_t>(0.04 * static_cast<double>(n * n)), 71);
  const auto h = srv.register_matrix(convert(AnyMatrix(coo), Format::kCSR));
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.125f * static_cast<float>(i % 11) - 0.5f;
  }
  {
    Request warm;  // resolve the plan + ACF rep outside the timed region
    warm.kernel = Kernel::kSpMV;
    warm.a = h;
    warm.vec = x;
    (void)srv.submit(warm).get();
  }

  // Counters are reported as the best trial's delta (not the cumulative
  // warmup+trials total), so the JSON's completed/batches figures describe
  // the same run as the recorded throughput.
  const auto delta = [](const CountersSnapshot& after,
                        const CountersSnapshot& before) {
    CountersSnapshot d = after;
    d.completed -= before.completed;
    d.failed -= before.failed;
    d.plan_hits -= before.plan_hits;
    d.plan_misses -= before.plan_misses;
    d.conversion_hits -= before.conversion_hits;
    d.conversion_misses -= before.conversion_misses;
    d.batches -= before.batches;
    d.batched_requests -= before.batched_requests;
    d.queue_wait_ns -= before.queue_wait_ns;
    d.plan_ns -= before.plan_ns;
    d.convert_ns -= before.convert_ns;
    d.exec_ns -= before.exec_ns;
    return d;
  };

  BatchModeResult r;
  for (int t = 0; t < cfg.trials; ++t) {
    const auto before = srv.counters();
    obs::Histogram lat;
    const double thr =
        pipelined_spmv_loop(srv, h, x, cfg.clients, cfg.spmv_outstanding,
                            cfg.spmv_requests, lat);
    if (thr > r.throughput_rps) {
      r.throughput_rps = thr;
      r.lat = quantiles_us(lat.snapshot());
      r.counters = delta(srv.counters(), before);
    }
  }
  r.queue_wait = queue_wait_quantiles(srv.metrics_snapshot());
  srv.stop();
  return r;
}

// --- Sharding phase ---

// Pipelined SpMV over several registered operands, round-robin: every
// client keeps `outstanding` requests in flight across the operand set,
// so admission pressure spreads over every shard's queue (or piles onto
// the single server's one queue — that contrast is the measurement).
template <typename S>
double pipelined_sharded_loop(S& srv, const std::vector<MatrixHandle>& hs,
                              const std::vector<value_t>& x, int clients,
                              int outstanding, int requests,
                              obs::Histogram& lat_ns) {
  const auto t0 = now_ns();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::deque<std::pair<std::future<Response>, std::int64_t>> inflight;
      int seq = c;  // stagger operand order across clients
      auto submit_one = [&] {
        Request r;
        r.kernel = Kernel::kSpMV;
        r.a = hs[static_cast<std::size_t>(seq++) % hs.size()];
        r.vec = x;
        inflight.emplace_back(srv.submit(std::move(r)), now_ns());
      };
      auto reap_one = [&] {
        auto [fut, ts] = std::move(inflight.front());
        inflight.pop_front();
        (void)fut.get();
        lat_ns.record(now_ns() - ts);
      };
      for (int i = 0; i < requests; ++i) {
        submit_one();
        if (static_cast<int>(inflight.size()) >= outstanding) reap_one();
      }
      while (!inflight.empty()) reap_one();
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = static_cast<double>(now_ns() - t0) / 1e9;
  return static_cast<double>(clients) * static_cast<double>(requests) /
         wall_s;
}

// Runs the sharding-phase traffic against an already-constructed server
// (Server or ShardedServer — same surface), warming every operand first.
template <typename S>
BatchModeResult measure_shard_mode(const Config& cfg, S& srv) {
  const index_t n = cfg.smoke ? 48 : 96;
  std::vector<MatrixHandle> hs;
  for (int i = 0; i < cfg.shard_operands; ++i) {
    const auto coo = synth_coo_matrix(
        n, n, static_cast<std::int64_t>(0.05 * static_cast<double>(n * n)),
        80 + static_cast<std::uint64_t>(i));
    hs.push_back(srv.register_matrix(convert(AnyMatrix(coo), Format::kCSR)));
  }
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.25f * static_cast<float>(i % 7) - 0.5f;
  }
  for (const auto& h : hs) {  // plans + ACF reps resolve outside the timing
    Request warm;
    warm.kernel = Kernel::kSpMV;
    warm.a = h;
    warm.vec = x;
    (void)srv.submit(std::move(warm)).get();
  }

  BatchModeResult r;
  for (int t = 0; t < cfg.trials; ++t) {
    obs::Histogram lat;
    const double thr = pipelined_sharded_loop(
        srv, hs, x, cfg.clients, cfg.spmv_outstanding, cfg.shard_requests,
        lat);
    if (thr > r.throughput_rps) {
      r.throughput_rps = thr;
      r.lat = quantiles_us(lat.snapshot());
    }
  }
  r.queue_wait = queue_wait_quantiles(srv.metrics_snapshot());
  r.counters = srv.counters();
  srv.stop();
  return r;
}

BatchModeResult run_shard_mode(const Config& cfg, int num_shards) {
  // Equal total workers either way: num_shards x 1 vs 1 x num_shards.
  // Caches on, batching off — the only variable is how many queue and
  // registry lock domains the same traffic is spread over.
  ServerOptions shard = make_options(cfg, /*caches_on=*/true);
  if (num_shards > 1) {
    shard.num_workers = 1;
    ShardedServerOptions o;
    o.num_shards = num_shards;
    o.shard = shard;
    ShardedServer srv(o);
    return measure_shard_mode(cfg, srv);
  }
  shard.num_workers = cfg.shard_count;
  Server srv(shard);
  return measure_shard_mode(cfg, srv);
}

// --- Telemetry-overhead phase ---

// The same cached pipelined SpMV traffic as the batching phase (batching
// off) with observability fully on (metrics + per-plan/exec histograms +
// a tracing ring sized to keep every span) vs fully off. What survives
// in the ratio is the per-request telemetry cost on the hottest path.
//
// Unlike the other phases, this one keeps the full-size operand and at
// least two trials even under --smoke: the telemetry cost per request is
// a fixed few hundred ns, so shrinking the request's real work inflates
// the measured *ratio* into something no production request would see,
// and a single smoke trial on a shared runner is pure noise.
BatchModeResult run_obs_mode(const Config& cfg, bool obs_on) {
  ServerOptions o = make_options(cfg, /*caches_on=*/true);
  o.obs.metrics = obs_on;
  o.obs.trace_ring_capacity = obs_on ? 4096 : 0;
  Server srv(o);

  const index_t n = 256;
  const auto coo = synth_coo_matrix(
      n, n, static_cast<std::int64_t>(0.04 * static_cast<double>(n * n)), 71);
  const auto h = srv.register_matrix(convert(AnyMatrix(coo), Format::kCSR));
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.125f * static_cast<float>(i % 11) - 0.5f;
  }
  {
    Request warm;
    warm.kernel = Kernel::kSpMV;
    warm.a = h;
    warm.vec = x;
    (void)srv.submit(warm).get();
  }

  BatchModeResult r;
  const int trials = std::max(cfg.trials, 2);
  for (int t = 0; t < trials; ++t) {
    obs::Histogram lat;
    const double thr =
        pipelined_spmv_loop(srv, h, x, cfg.clients, cfg.spmv_outstanding,
                            cfg.spmv_requests, lat);
    if (thr > r.throughput_rps) {
      r.throughput_rps = thr;
      r.lat = quantiles_us(lat.snapshot());
    }
    if (obs_on) (void)srv.drain_trace();  // a live consumer, as in production
  }
  r.queue_wait = queue_wait_quantiles(srv.metrics_snapshot());
  r.counters = srv.counters();
  srv.stop();
  return r;
}

// --- Async device-backend phase ---

// Pipelined SpMV through the mint (modeled offload) backend with latency
// simulation on, so every device job occupies its modeled wall-clock
// (bounded). One serving worker either blocks inside each device call or
// drains its window into the submission ring before claiming — the only
// variable is whether >1 device job can be in flight per worker. Caches
// are warm in both modes; the serving-side work is identical.
BatchModeResult run_device_mode(const Config& cfg, bool async) {
  ServerOptions o = make_options(cfg, /*caches_on=*/true);
  o.num_workers = 1;
  o.batch.policy = BatchPolicy::kWindow;  // the drained window feeds the ring
  o.batch.window = cfg.batch_window;
  o.backend.backend = exec::BackendKind::kMint;
  o.backend.async = async;
  o.backend.ring_slots = 32;
  o.backend.ring_workers = cfg.device_ring_workers;
  o.backend.simulate_latency = true;
  o.backend.max_simulated_latency_ns = 500'000;  // bound the per-job sleep
  Server srv(o);

  // The batching phase's operand: density 0.04 keeps the modeled offload
  // latency well above the per-request serving overhead, so the measured
  // ratio reflects device-time overlap rather than host bookkeeping.
  const index_t n = cfg.smoke ? 96 : 256;
  const auto coo = synth_coo_matrix(
      n, n, static_cast<std::int64_t>(0.04 * static_cast<double>(n * n)), 71);
  const auto h = srv.register_matrix(convert(AnyMatrix(coo), Format::kCSR));
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.125f * static_cast<float>(i % 11) - 0.5f;
  }
  {
    Request warm;  // resolve the plan + ACF rep outside the timed region
    warm.kernel = Kernel::kSpMV;
    warm.a = h;
    warm.vec = x;
    (void)srv.submit(warm).get();
  }

  BatchModeResult r;
  for (int t = 0; t < cfg.trials; ++t) {
    obs::Histogram lat;
    const double thr =
        pipelined_spmv_loop(srv, h, x, cfg.clients, cfg.spmv_outstanding,
                            cfg.device_requests, lat);
    if (thr > r.throughput_rps) {
      r.throughput_rps = thr;
      r.lat = quantiles_us(lat.snapshot());
    }
  }
  r.queue_wait = queue_wait_quantiles(srv.metrics_snapshot());
  r.counters = srv.counters();
  if (srv.device_ring() != nullptr) {
    r.ring_peak_in_flight = srv.device_ring()->stats().peak_in_flight;
  }
  srv.stop();
  return r;
}

// --- Ring submission-amortization phase ---

// Direct DeviceRing microbench isolating what submit_all buys over
// per-job submit on the pure admission path: a mint ring with latency
// simulation *off* (each device job is just the SpMV itself), fed
// drained windows of ring_submit_window_size SpMV jobs — either one
// submit() per job (one lock acquisition and one wakeup each) or one
// submit_all() per window (one lock session for the whole window) —
// then claimed in order. Returns jobs per second.
double run_ring_submit_mode(const Config& cfg, bool use_submit_all) {
  const auto mint = exec::make_backend(exec::BackendKind::kMint);
  exec::DeviceRing ring(*mint,
                        {.slots = static_cast<std::size_t>(
                             cfg.ring_submit_window_size),
                         .workers = 2});
  // A tiny operand keeps per-job device work in the microsecond range,
  // so submission overhead is a visible fraction of the total.
  const index_t n = 64;
  const auto a = convert(
      AnyMatrix(synth_coo_matrix(
          n, n, static_cast<std::int64_t>(0.05 * static_cast<double>(n * n)),
          73)),
      Format::kCSR);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.125f * static_cast<float>(i % 11) - 0.5f;
  }
  exec::Job proto;
  proto.kernel = Kernel::kSpMV;
  proto.a = &a;
  proto.vec = &x;

  const int window = cfg.ring_submit_window_size;
  const auto t0 = now_ns();
  for (int w = 0; w < cfg.ring_submit_windows; ++w) {
    if (use_submit_all) {
      std::vector<exec::Job> jobs(static_cast<std::size_t>(window), proto);
      const auto tickets = ring.submit_all(std::move(jobs));
      for (auto t : tickets) (void)ring.wait(t);
    } else {
      std::vector<exec::DeviceRing::Ticket> tickets;
      tickets.reserve(static_cast<std::size_t>(window));
      for (int i = 0; i < window; ++i) {
        tickets.push_back(ring.submit(proto));
      }
      for (auto t : tickets) (void)ring.wait(t);
    }
  }
  const double secs = static_cast<double>(now_ns() - t0) / 1e9;
  ring.stop();
  const auto total =
      static_cast<double>(cfg.ring_submit_windows) * window;
  return secs > 0.0 ? total / secs : 0.0;
}

void print_batch_mode(const char* name, const BatchModeResult& r) {
  std::printf(
      "%-9s  %10.0f req/s   p50 %8.1f us  p95 %8.1f us  p99 %8.1f us\n"
      "           queue-wait p50 %8.1f us  p99 %8.1f us\n"
      "           batches %lld, batched %lld/%lld requests (avg size %.1f)\n",
      name, r.throughput_rps, r.lat.p50_us, r.lat.p95_us, r.lat.p99_us,
      r.queue_wait.p50_us, r.queue_wait.p99_us,
      static_cast<long long>(r.counters.batches),
      static_cast<long long>(r.counters.batched_requests),
      static_cast<long long>(r.counters.completed),
      r.counters.avg_batch_size());
}

void print_mode(const char* name, const ModeResult& r) {
  const double n = std::max(1.0, static_cast<double>(r.counters.completed));
  std::printf(
      "%-7s  %10.0f req/s   closed p50 %8.1f us  p95 %8.1f us  "
      "p99 %8.1f us\n"
      "         open   p50 %8.1f us  p99 %8.1f us   queue-wait p50 %8.1f us  "
      "p99 %8.1f us\n"
      "         per-req avg: plan %6.1f us  convert %6.1f us  exec %6.1f us  "
      "queue %6.1f us\n"
      "         plan hit %5.1f%%  conversion hit %5.1f%%  (completed %lld, "
      "failed %lld)\n",
      name, r.throughput_rps, r.closed.p50_us, r.closed.p95_us,
      r.closed.p99_us, r.open.p50_us, r.open.p99_us, r.queue_wait.p50_us,
      r.queue_wait.p99_us, static_cast<double>(r.counters.plan_ns) / n / 1e3,
      static_cast<double>(r.counters.convert_ns) / n / 1e3,
      static_cast<double>(r.counters.exec_ns) / n / 1e3,
      static_cast<double>(r.counters.queue_wait_ns) / n / 1e3,
      100.0 * r.counters.plan_hit_rate(),
      100.0 * r.counters.conversion_hit_rate(),
      static_cast<long long>(r.counters.completed),
      static_cast<long long>(r.counters.failed));
}

void write_json(const Config& cfg, const ModeResult& cached,
                const ModeResult& bypass, double open_rate, double speedup,
                const BatchModeResult& batched,
                const BatchModeResult& unbatched, double batch_speedup,
                const BatchModeResult& sharded,
                const BatchModeResult& unsharded, double shard_speedup,
                const BatchModeResult& obs_on, const BatchModeResult& obs_off,
                double obs_ratio, const BatchModeResult& dev_async,
                const BatchModeResult& dev_blocking, double device_ratio,
                double ring_submit_all_jps, double ring_per_job_jps,
                double ring_submit_ratio) {
  std::ofstream os(cfg.out);
  auto quantiles = [&](const char* prefix, const Quantiles& q) {
    os << "    \"" << prefix << "p50_us\": " << q.p50_us << ",\n"
       << "    \"" << prefix << "p95_us\": " << q.p95_us << ",\n"
       << "    \"" << prefix << "p99_us\": " << q.p99_us << ",\n";
  };
  auto batch_mode = [&](const char* name, const BatchModeResult& r,
                        bool last) {
    os << "  \"" << name << "\": {\n"
       << "    \"throughput_rps\": " << r.throughput_rps << ",\n";
    quantiles("", r.lat);
    quantiles("queue_wait_", r.queue_wait);
    os << "    \"batches\": " << r.counters.batches << ",\n"
       << "    \"batched_requests\": " << r.counters.batched_requests << ",\n"
       << "    \"avg_batch_size\": " << r.counters.avg_batch_size() << ",\n"
       << "    \"completed\": " << r.counters.completed << ",\n"
       << "    \"failed\": " << r.counters.failed << "\n"
       << "  }" << (last ? "\n" : ",\n");
  };
  auto mode = [&](const char* name, const ModeResult& r, bool last) {
    os << "  \"" << name << "\": {\n"
       << "    \"throughput_rps\": " << r.throughput_rps << ",\n";
    quantiles("closed_loop_", r.closed);
    quantiles("open_loop_", r.open);
    quantiles("queue_wait_", r.queue_wait);
    os << "    \"plan_hit_rate\": " << r.counters.plan_hit_rate() << ",\n"
       << "    \"conversion_hit_rate\": " << r.counters.conversion_hit_rate()
       << ",\n"
       << "    \"completed\": " << r.counters.completed << ",\n"
       << "    \"failed\": " << r.counters.failed << "\n"
       << "  }" << (last ? "\n" : ",\n");
  };
  os << "{\n"
     << "  \"bench\": \"serve\",\n"
     << "  \"smoke\": " << (cfg.smoke ? "true" : "false") << ",\n"
     << "  \"workers\": " << cfg.workers << ",\n"
     << "  \"clients\": " << cfg.clients << ",\n"
     << "  \"requests_per_client\": " << cfg.requests << ",\n"
     << "  \"open_loop_rate_rps\": " << open_rate << ",\n"
     << "  \"batch_window\": " << cfg.batch_window << ",\n"
     << "  \"spmv_outstanding\": " << cfg.spmv_outstanding << ",\n"
     << "  \"num_shards\": " << cfg.shard_count << ",\n"
     << "  \"speedup_cached_over_bypass\": " << speedup << ",\n"
     << "  \"speedup_batched_over_unbatched\": " << batch_speedup << ",\n"
     << "  \"speedup_sharded_over_unsharded\": " << shard_speedup << ",\n"
     << "  \"obs_on_over_off\": " << obs_ratio << ",\n"
     << "  \"device_ring_workers\": " << cfg.device_ring_workers << ",\n"
     << "  \"device_ring_peak_in_flight\": " << dev_async.ring_peak_in_flight
     << ",\n"
     << "  \"device_inflight_over_blocking\": " << device_ratio << ",\n"
     << "  \"ring_submit_all_jobs_per_s\": " << ring_submit_all_jps << ",\n"
     << "  \"ring_per_job_jobs_per_s\": " << ring_per_job_jps << ",\n"
     << "  \"ring_submit_all_over_per_job\": " << ring_submit_ratio << ",\n";
  mode("cached", cached, false);
  mode("bypass", bypass, false);
  batch_mode("batched", batched, false);
  batch_mode("unbatched", unbatched, false);
  // The shard phase runs with batching off, so its batches fields read 0.
  batch_mode("sharded", sharded, false);
  batch_mode("unsharded", unsharded, false);
  // Telemetry-overhead phase: obs_off's queue_wait quantiles read 0 (the
  // histogram doesn't exist with metrics off).
  batch_mode("obs_on", obs_on, false);
  batch_mode("obs_off", obs_off, false);
  // Device phase: both run with batching off on the device path (fusion
  // is a host-kernel contract), so their batches fields read 0.
  batch_mode("device_async", dev_async, false);
  batch_mode("device_blocking", dev_blocking, true);
  os << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](int& out) {
      if (i + 1 < argc) out = std::atoi(argv[++i]);
    };
    if (arg == "--smoke") {
      cfg.smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      cfg.out = argv[++i];
    } else if (arg == "--clients") {
      next(cfg.clients);
    } else if (arg == "--requests") {
      next(cfg.requests);
    } else if (arg == "--workers") {
      next(cfg.workers);
    }
  }
  if (cfg.smoke) {
    cfg.clients = std::min(cfg.clients, 2);
    // Enough repeated traffic that the cache/batching *ratios* are
    // meaningful (the CI perf-gate reads them): with only a handful of
    // requests the first-touch misses dominate the cached mode and the
    // ratio collapses toward 1 regardless of cache health.
    cfg.requests = std::min(cfg.requests, 150);
    cfg.open_loop_requests = 30;
    cfg.trials = 1;
    cfg.spmv_requests = 400;
    cfg.shard_requests = 300;
    cfg.device_requests = 120;
    cfg.ring_submit_windows = 300;
  }

  mt::bench::banner("Serving runtime: cached vs no-cache repeated traffic");
  std::printf("workers %d, clients %d, %d requests/client closed-loop\n",
              cfg.workers, cfg.clients, cfg.requests);

  // Cached mode first; its measured throughput sets the open-loop rate
  // both modes are measured at (so the bypass mode's queue buildup shows
  // up as tail latency at the same offered load).
  mt::bench::subhead("caches enabled (plan + conversion)");
  const ModeResult cached =
      run_mode(cfg, /*caches_on=*/true, /*open_rate_rps=*/0.0);
  print_mode("cached", cached);

  mt::bench::subhead("caches bypassed (SAGE + convert on every request)");
  const ModeResult bypass =
      run_mode(cfg, /*caches_on=*/false, cached.open_rate_rps);
  print_mode("bypass", bypass);
  const double open_rate = cached.open_rate_rps;

  const double speedup =
      bypass.throughput_rps > 0.0
          ? cached.throughput_rps / bypass.throughput_rps
          : 0.0;
  std::printf("\nthroughput speedup (cached / bypass): %.2fx %s\n", speedup,
              speedup >= 5.0 ? "(meets the >=5x acceptance bar)"
                             : "(below the 5x bar)");

  // Batching phase: same pipelined SpMV-heavy traffic, batcher on vs off
  // (caches warm in both — this isolates what coalescing itself buys).
  mt::bench::subhead("request batching (pipelined SpMV-heavy traffic)");
  std::printf("window %d, %d clients x %d outstanding, %d requests/client\n",
              cfg.batch_window, cfg.clients, cfg.spmv_outstanding,
              cfg.spmv_requests);
  const BatchModeResult batched = run_batch_mode(cfg, BatchPolicy::kWindow);
  print_batch_mode("batched", batched);
  const BatchModeResult unbatched = run_batch_mode(cfg, BatchPolicy::kOff);
  print_batch_mode("unbatched", unbatched);

  const double batch_speedup =
      unbatched.throughput_rps > 0.0
          ? batched.throughput_rps / unbatched.throughput_rps
          : 0.0;
  std::printf(
      "\nthroughput speedup (batched / unbatched): %.2fx %s\n", batch_speedup,
      batch_speedup >= 1.5 ? "(meets the >=1.5x acceptance bar)"
                           : "(below the 1.5x bar)");

  // Sharding phase: same total worker count, caches on, batching off —
  // the ratio isolates what splitting the queue/registry lock domains
  // buys (or costs) at equal compute.
  mt::bench::subhead("sharded routing (pipelined SpMV over 8 operands)");
  std::printf("%d shards x 1 worker vs 1 server x %d workers, "
              "%d clients x %d outstanding, %d requests/client\n",
              cfg.shard_count, cfg.shard_count, cfg.clients,
              cfg.spmv_outstanding, cfg.shard_requests);
  const BatchModeResult sharded = run_shard_mode(cfg, cfg.shard_count);
  print_batch_mode("sharded", sharded);
  const BatchModeResult unsharded = run_shard_mode(cfg, 1);
  print_batch_mode("unsharded", unsharded);

  const double shard_speedup =
      unsharded.throughput_rps > 0.0
          ? sharded.throughput_rps / unsharded.throughput_rps
          : 0.0;
  std::printf(
      "\nthroughput speedup (sharded / unsharded): %.2fx %s\n", shard_speedup,
      shard_speedup >= 1.0 ? "(meets the >=1.0x acceptance bar)"
                           : "(below the 1.0x bar)");

  // Telemetry-overhead phase: the cached hot path with full observability
  // vs none. The bar is a *cost ceiling*, not a speedup floor.
  mt::bench::subhead("telemetry overhead (cached pipelined SpMV)");
  const BatchModeResult obs_on = run_obs_mode(cfg, /*obs_on=*/true);
  print_batch_mode("obs on", obs_on);
  const BatchModeResult obs_off = run_obs_mode(cfg, /*obs_on=*/false);
  print_batch_mode("obs off", obs_off);
  const double obs_ratio = obs_off.throughput_rps > 0.0
                               ? obs_on.throughput_rps /
                                     obs_off.throughput_rps
                               : 0.0;
  std::printf(
      "\nthroughput ratio (obs on / obs off): %.3fx %s\n", obs_ratio,
      obs_ratio >= 0.95 ? "(meets the >=0.95x acceptance bar)"
                        : "(below the 0.95x bar)");

  // Async device-backend phase: modeled offload (mint) with simulated
  // latency; the ring's submit-all-then-claim-all window vs blocking
  // inside every device call.
  mt::bench::subhead("async device ring (mint offload, pipelined SpMV)");
  std::printf("1 worker, %d ring workers, %d clients x %d outstanding, "
              "%d requests/client\n",
              cfg.device_ring_workers, cfg.clients, cfg.spmv_outstanding,
              cfg.device_requests);
  const BatchModeResult dev_async = run_device_mode(cfg, /*async=*/true);
  print_batch_mode("async", dev_async);
  const BatchModeResult dev_blocking = run_device_mode(cfg, /*async=*/false);
  print_batch_mode("blocking", dev_blocking);
  const double device_ratio =
      dev_blocking.throughput_rps > 0.0
          ? dev_async.throughput_rps / dev_blocking.throughput_rps
          : 0.0;
  std::printf(
      "\nthroughput ratio (async / blocking): %.2fx, ring peak in-flight "
      "%lld %s\n",
      device_ratio, static_cast<long long>(dev_async.ring_peak_in_flight),
      device_ratio >= 1.2 ? "(meets the >=1.2x acceptance bar)"
                          : "(below the 1.2x bar)");

  // Ring submission phase: the direct-ring microbench behind the device
  // path's one-submit_all-per-window policy. Info-only in CI (bar 1.0):
  // on an idle ring the win is lock/wakeup amortization, small by design.
  mt::bench::subhead("ring submission (direct DeviceRing, mint offload)");
  std::printf("%d windows x %d SpMV jobs, submit_all vs per-job submit\n",
              cfg.ring_submit_windows, cfg.ring_submit_window_size);
  const double ring_submit_all_jps =
      run_ring_submit_mode(cfg, /*use_submit_all=*/true);
  const double ring_per_job_jps =
      run_ring_submit_mode(cfg, /*use_submit_all=*/false);
  const double ring_submit_ratio =
      ring_per_job_jps > 0.0 ? ring_submit_all_jps / ring_per_job_jps : 0.0;
  std::printf("submit_all %10.0f jobs/s   per-job %10.0f jobs/s   "
              "ratio %.3fx\n",
              ring_submit_all_jps, ring_per_job_jps, ring_submit_ratio);

  write_json(cfg, cached, bypass, open_rate, speedup, batched, unbatched,
             batch_speedup, sharded, unsharded, shard_speedup, obs_on,
             obs_off, obs_ratio, dev_async, dev_blocking, device_ratio,
             ring_submit_all_jps, ring_per_job_jps, ring_submit_ratio);
  std::printf("wrote %s\n", cfg.out.c_str());
  return 0;
}
