#!/usr/bin/env python3
"""CI perf gate: compare freshly produced bench JSON against the
checked-in baselines and fail on a real throughput regression.

Usage:
    check_bench.py [--fresh-dir DIR] [--baseline-dir DIR] [--tolerance F]

Reads the fresh BENCH_kernels[.smoke].json / BENCH_serve[.smoke].json from
--fresh-dir (default: build/bench_logs, where run_all.sh --smoke puts
them) and the committed BENCH_kernels.json / BENCH_serve.json from
--baseline-dir (default: repo root).

Gating policy — only shared-runner-stable metrics:

* Absolute numbers (ns, req/s) swing an order of magnitude between runner
  generations and are never gated.
* Gated metrics are *ratios* of two measurements taken back-to-back in
  the same process on the same machine (parallel/serial per kernel,
  cached/bypass, batched/unbatched), which cancel the machine out.
* Each ratio must stay within --tolerance (default 30%) of
  min(baseline, bar), where `bar` is the acceptance bar the metric had to
  clear when it was recorded. The min() keeps a lucky, fast baseline run
  from ratcheting the requirement past what the feature ever promised;
  the bar itself still guards the feature's reason to exist.
* Smoke-mode numbers come from tiny operands, so the effective floor is
  deliberately loose — this gate catches "the batcher stopped batching"
  or "the caches stopped caching", not single-digit drift.

Exit status: 0 = pass, 1 = regression, 2 = missing/invalid input.
"""

import argparse
import json
import pathlib
import sys

# metric -> acceptance bar it had to clear when recorded (see ISSUE logs:
# cached/bypass >= 5x in PR 3, batched/unbatched >= 1.5x in PR 4,
# sharded/unsharded >= 1.0x in PR 5 — sharding must not cost throughput
# at equal total workers; multi-core runners see contention relief > 1,
# obs on/off >= 0.95x in PR 8 — full telemetry may cost at most 5% of
# cached-serving throughput, async/blocking >= 1.2x in PR 9 — the device
# submission ring must buy real pipelining over blocking in every mint
# call).
SERVE_RATIOS = {
    "speedup_cached_over_bypass": 5.0,
    "speedup_batched_over_unbatched": 1.5,
    "speedup_sharded_over_unsharded": 1.0,
    "obs_on_over_off": 0.95,
    "device_inflight_over_blocking": 1.2,
}

# Latency-quantile fields printed for the record but never gated: they are
# absolute microsecond numbers (runner-dependent) and log2-bucket upper
# bounds besides. Keys are (mode object, field) paths into the serve JSON.
SERVE_INFO_QUANTILES = (
    ("cached", "closed_loop_p50_us"),
    ("cached", "closed_loop_p95_us"),
    ("cached", "closed_loop_p99_us"),
    ("cached", "queue_wait_p50_us"),
    ("cached", "queue_wait_p99_us"),
    ("batched", "p99_us"),
    ("batched", "queue_wait_p99_us"),
    ("obs_on", "p99_us"),
    ("obs_off", "p99_us"),
    ("device_async", "p99_us"),
    ("device_blocking", "p99_us"),
)

# Per-kernel parallel-over-serial speedup. Bar 1.0: the OpenMP path must
# not be slower than serial. (The committed baseline was recorded on one
# core, so speedups sit near 1.0; multi-core runners only exceed it.)
KERNEL_BAR = 1.0

# Per-kernel SIMD-over-scalar speedup, gated only for the kernels whose
# inner loops were vectorized in PR 7 (SpMV/SpMM/GEMM; SpGEMM and the
# tensor kernels gained cache blocking, not a lane-parallel inner loop).
# Both measurements come from the same process at one thread, so the
# ratio is runner-stable. Gating auto-skips when the fresh run reports
# the host lacks AVX2+FMA (portable-fallback CI job) or the baseline
# predates the field.
SIMD_BAR = 1.15
SIMD_GATED_KERNELS = ("SpMV", "SpMM", "GEMM")

# A kernel row is only gate-worthy if its serial measurement ran long
# enough to rise above timer/warmup noise. Smoke-mode operands finish in
# microseconds, where a single-rep "speedup" is meaningless in either
# direction; full-mode rows (1-100+ ms) all clear this easily.
MIN_GATE_SERIAL_MS = 1.0


def load(path: pathlib.Path):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"perf-gate: missing {path}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print(f"perf-gate: invalid JSON in {path}: {e}", file=sys.stderr)
        sys.exit(2)


def pick(dir_: pathlib.Path, stem: str) -> pathlib.Path:
    """Prefer the smoke-suffixed file (what run_all.sh --smoke writes)."""
    smoke = dir_ / f"{stem}.smoke.json"
    return smoke if smoke.exists() else dir_ / f"{stem}.json"


def gate(name: str, fresh: float, baseline: float, bar: float,
         tolerance: float) -> bool:
    required = (1.0 - tolerance) * min(baseline, bar)
    ok = fresh >= required
    verdict = "ok  " if ok else "FAIL"
    print(f"  {verdict} {name}: fresh {fresh:.3f} vs required >= "
          f"{required:.3f} (baseline {baseline:.3f}, bar {bar:.2f})")
    return ok


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh-dir", default="build/bench_logs",
                    type=pathlib.Path)
    ap.add_argument("--baseline-dir", default=".", type=pathlib.Path)
    ap.add_argument("--tolerance", default=0.30, type=float,
                    help="allowed fractional regression (default 0.30)")
    args = ap.parse_args()

    ok = True

    print("perf-gate: serve ratios")
    fresh_serve = load(pick(args.fresh_dir, "BENCH_serve"))
    base_serve = load(args.baseline_dir / "BENCH_serve.json")
    for metric, bar in SERVE_RATIOS.items():
        if metric not in base_serve:
            print(f"  skip {metric}: not in baseline (pre-feature record)")
            continue
        if metric not in fresh_serve:
            print(f"  FAIL {metric}: missing from fresh run", file=sys.stderr)
            ok = False
            continue
        ok &= gate(metric, float(fresh_serve[metric]),
                   float(base_serve[metric]), bar, args.tolerance)

    # Info-only ratios: printed for the record, never gated. The
    # submit_all microbench measures lock/wakeup amortization on an idle
    # direct ring — a small, scheduler-sensitive win (bar 1.0 when
    # recorded: batched admission must not cost throughput); gating it
    # would turn scheduler noise into CI failures.
    print("perf-gate: serve info ratios (info only, not gated)")
    for metric in ("ring_submit_all_over_per_job",):
        value = fresh_serve.get(metric)
        if value is None:
            print(f"  info {metric}: absent (pre-feature bench)")
        else:
            print(f"  info {metric}: {float(value):.3f}x")

    print("perf-gate: serve latency quantiles (info only, not gated)")
    for mode, field in SERVE_INFO_QUANTILES:
        value = fresh_serve.get(mode, {}).get(field)
        if value is None:
            print(f"  info {mode}.{field}: absent (pre-feature bench)")
        else:
            print(f"  info {mode}.{field}: {float(value):.1f} us")

    print("perf-gate: kernel parallel/serial speedups")
    fresh_k = load(pick(args.fresh_dir, "BENCH_kernels"))
    base_k = load(args.baseline_dir / "BENCH_kernels.json")
    base_by_kernel = {r["kernel"]: r for r in base_k.get("results", [])}
    for row in fresh_k.get("results", []):
        base_row = base_by_kernel.get(row["kernel"])
        if base_row is None:
            print(f"  skip {row['kernel']}: not in baseline")
            continue
        if float(row.get("serial_ms", 0.0)) < MIN_GATE_SERIAL_MS:
            print(f"  skip {row['kernel']}: serial run too short to gate "
                  f"({row.get('serial_ms', 0.0)} ms < {MIN_GATE_SERIAL_MS})")
            continue
        ok &= gate(row["kernel"], float(row["speedup"]),
                   float(base_row["speedup"]), KERNEL_BAR, args.tolerance)

    print("perf-gate: kernel simd/scalar speedups")
    if not fresh_k.get("simd_supported", False):
        print("  skip all: fresh run reports no AVX2+FMA on this host")
    else:
        for row in fresh_k.get("results", []):
            if row["kernel"] not in SIMD_GATED_KERNELS:
                continue
            base_row = base_by_kernel.get(row["kernel"], {})
            if "simd_over_scalar" not in base_row:
                print(f"  skip {row['kernel']}: not in baseline "
                      "(pre-feature record)")
                continue
            if "simd_over_scalar" not in row:
                print(f"  FAIL {row['kernel']}: simd_over_scalar missing "
                      "from fresh run", file=sys.stderr)
                ok = False
                continue
            if float(row.get("serial_ms", 0.0)) < MIN_GATE_SERIAL_MS:
                print(f"  skip {row['kernel']}: serial run too short to "
                      f"gate ({row.get('serial_ms', 0.0)} ms < "
                      f"{MIN_GATE_SERIAL_MS})")
                continue
            ok &= gate(f"{row['kernel']} (simd)",
                       float(row["simd_over_scalar"]),
                       float(base_row["simd_over_scalar"]), SIMD_BAR,
                       args.tolerance)

    if not ok:
        print("perf-gate: REGRESSION — throughput ratios fell more than "
              f"{args.tolerance:.0%} below the gated floor", file=sys.stderr)
        return 1
    print("perf-gate: pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
