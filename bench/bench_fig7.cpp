// Reproduces paper Fig. 7b: area overhead of the flexible-ACF PE
// extension (metadata comparators, one-hot-to-binary encoder, buffer flag
// bits) over a base PE with a 128 B buffer and an 8-wide 32-bit vector
// unit — the paper reports ~10%.
#include <cstdio>

#include "accel/area.hpp"
#include "bench_util.hpp"

int main() {
  using namespace mt;
  AccelConfig cfg;
  cfg.pe_buffer_bytes = 128;  // the Fig. 7b configuration
  cfg.vector_width = 8;

  const auto a = pe_area(cfg, /*multi_precision=*/false);
  mt::bench::banner("Fig. 7b: extended PE area breakdown (128 B buffer, 8-wide fp32)");
  std::printf("%-28s %12s\n", "component", "area (mm^2)");
  std::printf("%-28s %12.5f\n", "vector MAC units", a.mac_mm2);
  std::printf("%-28s %12.5f\n", "weight/metadata buffer", a.buffer_mm2);
  std::printf("%-28s %12.5f\n", "control + output regs", a.control_mm2);
  std::printf("%-28s %12.5f\n", "base PE total", a.base_mm2());
  std::printf("%-28s %12.5f\n", "+ metadata comparators", a.comparators_mm2);
  std::printf("%-28s %12.5f\n", "+ one-hot encoder/addrgen", a.encoder_mm2);
  std::printf("%-28s %12.5f\n", "+ buffer flag bits", a.flags_mm2);
  std::printf("%-28s %12.5f\n", "extended PE total", a.total_mm2());
  std::printf("\nextension overhead: %.1f%%   (paper: ~10%%)\n",
              100.0 * a.extension_overhead());

  mt::bench::subhead("evaluation array (2048 multi-precision PEs, 16384 MACs)");
  std::printf("array area: %.1f mm^2\n",
              array_area_mm2(AccelConfig::paper_default()));
  return 0;
}
