// Reproduces paper Table III: the MCF/ACF combinations SAGE selects for
// every evaluation workload, in both scenarios — the left block (sparse
// factor operand: SpGEMM for matrices) and the right block (dense factor
// operand: SpMM), plus the tensor rows (SpTTM for BrainQ, MTTKRP for
// Crime and Uber).
#include <cstdio>

#include "bench_util.hpp"
#include "sage/sage.hpp"
#include "workloads/registry.hpp"
#include "workloads/synth.hpp"

int main() {
  using namespace mt;
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams e;

  mt::bench::banner("Table III (left block): SpGEMM — sparse A x sparse B(K x M/2)");
  std::printf("%-12s %10s %10s | %-6s %-6s %-6s %-6s\n", "workload", "nnz",
              "density%", "MCFa", "MCFb", "ACFa", "ACFb");
  for (const auto& w : table3_matrices()) {
    const auto a = synth_coo_matrix(w, 1);
    const index_t n = factor_cols(w.m);
    const auto b_nnz = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(w.density() * static_cast<double>(w.k) *
                                     static_cast<double>(n)));
    const auto b = synth_coo_matrix(w.k, n, b_nnz, 2);
    const auto c = sage_select_matmul(a, b, cfg, e);
    std::printf("%-12s %10lld %10.4f | %-6s %-6s %-6s %-6s\n", w.name.c_str(),
                static_cast<long long>(w.nnz), 100.0 * w.density(),
                std::string(name_of(c.mcf_a)).c_str(),
                std::string(name_of(c.mcf_b)).c_str(),
                std::string(name_of(c.acf_a)).c_str(),
                std::string(name_of(c.acf_b)).c_str());
  }

  mt::bench::banner("Table III (right block): SpMM — sparse A x dense B(K x M/2)");
  std::printf("%-12s %10s %10s | %-6s %-6s %-6s %-6s\n", "workload", "nnz",
              "density%", "MCFa", "MCFb", "ACFa", "ACFb");
  for (const auto& w : table3_matrices()) {
    const auto a = synth_coo_matrix(w, 1);
    const auto c = sage_select_spmm_dense_b(a, factor_cols(w.m), cfg, e);
    std::printf("%-12s %10lld %10.4f | %-6s %-6s %-6s %-6s\n", w.name.c_str(),
                static_cast<long long>(w.nnz), 100.0 * w.density(),
                std::string(name_of(c.mcf_a)).c_str(),
                std::string(name_of(c.mcf_b)).c_str(),
                std::string(name_of(c.acf_a)).c_str(),
                std::string(name_of(c.acf_b)).c_str());
  }

  mt::bench::banner("Table III (tensor rows): SpTTM / MTTKRP with dense factors");
  std::printf("%-12s %-8s %10s %10s | %-6s %-6s\n", "workload", "kernel",
              "nnz", "density%", "MCFt", "ACFt");
  for (const auto& w : table3_tensors()) {
    const auto x = synth_coo_tensor(w, 3);
    const auto c = sage_select_tensor(x, factor_cols(w.x), w.kernel, cfg, e);
    std::printf("%-12s %-8s %10lld %10.4f | %-6s %-6s\n", w.name.c_str(),
                std::string(name_of(w.kernel)).c_str(),
                static_cast<long long>(w.nnz), 100.0 * w.density(),
                std::string(name_of(c.mcf_t)).c_str(),
                std::string(name_of(c.acf_t)).c_str());
  }

  std::printf(
      "\nExpected shape (paper Table III): ZVC/Dense formats for the dense\n"
      "journal; RLC storage through the mid densities; CSR/COO storage and\n"
      "compressed ACFs at extreme sparsity (m3plates); ZVC+Dense for\n"
      "BrainQ; CSF/COO for Crime and Uber.\n");
  return 0;
}
