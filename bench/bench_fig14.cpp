// Reproduces paper Fig. 14: the ResNet-50/CIFAR-10 convolution case
// study. Each conv layer is lowered to GEMM via im2col (batch 64, stride
// 1): the pruned weight matrix is the stationary operand, the ReLU-sparse
// activations stream. Fig. 14b is this work's per-layer EDP under the
// three pruning strategies; Fig. 14c the average EDP of the baselines
// normalized to this work.
#include <cstdio>
#include <map>
#include <vector>

#include "baselines/baselines.hpp"
#include "bench_util.hpp"
#include "workloads/resnet.hpp"
#include "workloads/synth.hpp"

int main() {
  using namespace mt;
  const AccelConfig cfg = AccelConfig::paper_default();
  const EnergyParams e;
  const index_t batch = 64;

  mt::bench::banner("Fig. 14b: per-layer EDP of this work (batch 64, im2col GEMM)");
  std::printf("%-6s %-22s", "layer", "GEMM (MxKxN)");
  for (PruneStrategy p : kAllPruneStrategies) {
    std::printf(" %20.20s", std::string(name_of(p)).c_str());
  }
  std::printf("\n");

  std::map<AccelType, std::vector<double>> norm;
  for (const auto& l : resnet50_cifar10_layers()) {
    const auto g = im2col_gemm_shape(l, batch);
    std::printf("%-6d %6lldx%lldx%-8lld", l.layer_id,
                static_cast<long long>(g.n), static_cast<long long>(g.k),
                static_cast<long long>(g.m));
    for (PruneStrategy p : kAllPruneStrategies) {
      // Streamed A: im2col activations (N x K here: rows = spatial*batch);
      // stationary B: pruned weights (K x M).
      const auto a_nnz = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(l.act_density(p) *
                                       static_cast<double>(g.n) *
                                       static_cast<double>(g.k)));
      const auto b_nnz = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(l.wgt_density(p) *
                                       static_cast<double>(g.k) *
                                       static_cast<double>(g.m)));
      const auto a = synth_coo_matrix(g.n, g.k, a_nnz,
                                      static_cast<std::uint64_t>(l.layer_id));
      const auto b = synth_coo_matrix(g.k, g.m, b_nnz,
                                      static_cast<std::uint64_t>(l.layer_id) + 100);
      const auto ours = evaluate_baseline(AccelType::kFlexFlexHw, a, b, cfg, e);
      std::printf(" %20.3e", ours.edp);
      for (AccelType t : kAllAccelTypes) {
        if (t == AccelType::kFlexFlexHw) continue;
        const auto r = evaluate_baseline(t, a, b, cfg, e);
        norm[t].push_back(r.edp / ours.edp);
      }
    }
    std::printf("\n");
  }

  mt::bench::banner("Fig. 14c: average EDP vs this work (across layers & strategies)");
  std::vector<double> all;
  for (auto& [t, v] : norm) {
    const double g = mt::bench::geomean(v);
    all.insert(all.end(), v.begin(), v.end());
    std::printf("%-26s geomean %8.2fx this work\n",
                std::string(name_of(t)).c_str(), g);
  }
  std::printf("\naverage EDP reduction across all baselines: %.0f%%  (paper: ~70%%)\n",
              100.0 * (mt::bench::geomean(all) - 1.0));
  std::printf(
      "\nExpected shape (paper): early layers (1-6) are activation-\n"
      "dominated, so pruning strategy barely moves EDP; layers 7-8 under\n"
      "global pruning become weight-dominated and very sparse, where the\n"
      "compact MCF + Dense(A)-CSC(B)-style ACF pays off.\n");
  return 0;
}
