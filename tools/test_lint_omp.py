"""Unit tests for tools/lint_omp.py (stdlib unittest; pytest-compatible).

Run locally with either of:
    python3 -m unittest discover -s tools -p 'test_*.py'
    python3 -m pytest tools/test_lint_omp.py
CI runs them as the LintOmp.Unit ctest (tests/CMakeLists.txt).
"""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import lint_omp  # noqa: E402


def rules_of(violations):
    return sorted(v.rule for v in violations)


class ParsePragmasTest(unittest.TestCase):
    def test_finds_pragmas_with_line_numbers(self):
        text = "int x;\n#pragma omp parallel for\nfor(;;){}\n"
        pragmas = lint_omp.parse_pragmas(text)
        self.assertEqual(len(pragmas), 1)
        self.assertEqual(pragmas[0].line, 2)

    def test_joins_backslash_continuations(self):
        text = ("#pragma omp parallel for \\\n"
                "    schedule(static) \\\n"
                "    num_threads(4)\n"
                "for(;;){}\n")
        pragmas = lint_omp.parse_pragmas(text)
        self.assertEqual(len(pragmas), 1)
        self.assertIn("schedule(static)", pragmas[0].text)
        self.assertIn("num_threads(4)", pragmas[0].text)

    def test_ignores_non_omp_pragmas(self):
        text = "#pragma once\n#pragma GCC ivdep\n"
        self.assertEqual(lint_omp.parse_pragmas(text), [])

    def test_captures_preceding_context_window(self):
        filler = "int a;\n" * 20
        text = filler + "// omp-determinism: rows disjoint\n#pragma omp for\n"
        pragmas = lint_omp.parse_pragmas(text)
        self.assertEqual(len(pragmas[0].context), lint_omp.JUSTIFY_WINDOW)
        self.assertIn("omp-determinism", pragmas[0].context[-1])


class LintTextTest(unittest.TestCase):
    def lint(self, text, allowlist=frozenset()):
        return lint_omp.lint_text("src/kernels/x.cpp", text, set(allowlist))

    def test_static_schedule_is_clean(self):
        out = self.lint("#pragma omp parallel for schedule(static)\n")
        self.assertEqual(out, [])

    def test_static_with_chunk_is_clean(self):
        out = self.lint("#pragma omp parallel for schedule(static, 4)\n")
        self.assertEqual(out, [])

    def test_nowait_always_flagged(self):
        out = self.lint("#pragma omp for schedule(static) nowait\n")
        self.assertEqual(rules_of(out), ["nowait"])

    def test_nowait_has_no_waiver(self):
        out = lint_omp.lint_text(
            "src/kernels/x.cpp",
            "#pragma omp for schedule(static) nowait\n",
            {("src/kernels/x.cpp", "schedule"),
             ("src/kernels/x.cpp", "reduction")})
        self.assertEqual(rules_of(out), ["nowait"])

    def test_reduction_flagged(self):
        out = self.lint(
            "#pragma omp parallel for schedule(static) reduction(+:s)\n")
        self.assertEqual(rules_of(out), ["reduction"])

    def test_reduction_allowlisted(self):
        out = self.lint(
            "#pragma omp parallel for schedule(static) reduction(+:s)\n",
            {("src/kernels/x.cpp", "reduction")})
        self.assertEqual(out, [])

    def test_dynamic_schedule_without_justification_flagged(self):
        out = self.lint("#pragma omp parallel for schedule(dynamic, 16)\n")
        self.assertEqual(rules_of(out), ["schedule"])

    def test_missing_schedule_flagged(self):
        out = self.lint("#pragma omp parallel for\n")
        self.assertEqual(rules_of(out), ["schedule"])

    def test_bare_for_construct_checked(self):
        out = self.lint("#pragma omp for\n")
        self.assertEqual(rules_of(out), ["schedule"])

    def test_parallel_region_without_for_not_schedule_checked(self):
        out = self.lint("#pragma omp parallel num_threads(4)\n")
        self.assertEqual(out, [])

    def test_justification_comment_accepted(self):
        out = self.lint(
            "// omp-determinism: each row is written by one iteration\n"
            "#pragma omp parallel for schedule(dynamic, 16)\n")
        self.assertEqual(out, [])

    def test_justification_outside_window_rejected(self):
        filler = "int a;\n" * (lint_omp.JUSTIFY_WINDOW + 1)
        out = self.lint(
            "// omp-determinism: too far away\n" + filler +
            "#pragma omp parallel for schedule(dynamic)\n")
        self.assertEqual(rules_of(out), ["schedule"])

    def test_schedule_allowlist_accepted(self):
        out = self.lint("#pragma omp parallel for schedule(guided)\n",
                        {("src/kernels/x.cpp", "schedule")})
        self.assertEqual(out, [])

    def test_continuation_line_clauses_detected(self):
        out = self.lint(
            "#pragma omp parallel for schedule(static) \\\n    nowait\n")
        self.assertEqual(rules_of(out), ["nowait"])


class AllowlistFileTest(unittest.TestCase):
    def test_parses_entries_comments_and_blanks(self):
        with tempfile.TemporaryDirectory() as d:
            p = pathlib.Path(d) / "allow.txt"
            p.write_text("# header\n\n"
                         "src/kernels/a.cpp reduction\n"
                         "src/kernels/b.cpp schedule  # trailing comment\n")
            entries = lint_omp.load_allowlist(p)
        self.assertEqual(entries, {("src/kernels/a.cpp", "reduction"),
                                   ("src/kernels/b.cpp", "schedule")})

    def test_missing_file_is_empty(self):
        entries = lint_omp.load_allowlist(pathlib.Path("/nonexistent/x.txt"))
        self.assertEqual(entries, set())

    def test_malformed_entry_rejected(self):
        with tempfile.TemporaryDirectory() as d:
            p = pathlib.Path(d) / "allow.txt"
            p.write_text("src/kernels/a.cpp not-a-rule\n")
            with self.assertRaises(SystemExit):
                lint_omp.load_allowlist(p)


class ScanTreeTest(unittest.TestCase):
    def make_tree(self, d, kernel_text):
        root = pathlib.Path(d)
        (root / "src" / "kernels").mkdir(parents=True)
        (root / "src" / "kernels" / "k.cpp").write_text(kernel_text)
        return root

    def test_clean_tree(self):
        with tempfile.TemporaryDirectory() as d:
            root = self.make_tree(
                d, "#pragma omp parallel for schedule(static)\n")
            violations, n = lint_omp.scan_tree(root, set())
        self.assertEqual(violations, [])
        self.assertEqual(n, 1)

    def test_violating_tree(self):
        with tempfile.TemporaryDirectory() as d:
            root = self.make_tree(d, "#pragma omp for nowait\n")
            violations, _ = lint_omp.scan_tree(root, set())
        self.assertEqual(rules_of(violations), ["nowait", "schedule"])

    def test_unused_allowlist_entry_flagged(self):
        with tempfile.TemporaryDirectory() as d:
            root = self.make_tree(
                d, "#pragma omp parallel for schedule(static)\n")
            violations, _ = lint_omp.scan_tree(
                root, {("src/kernels/gone.cpp", "reduction")})
        self.assertEqual(rules_of(violations), ["allowlist"])

    def test_real_tree_is_clean(self):
        # The committed kernel/exec sources must stay lint-clean with the
        # committed allowlist — the same invariant CI enforces.
        root = pathlib.Path(__file__).resolve().parent.parent
        allowlist = lint_omp.load_allowlist(
            root / "tools" / "omp_lint_allowlist.txt")
        violations, n = lint_omp.scan_tree(root, allowlist)
        self.assertEqual([str(v) for v in violations], [])
        self.assertGreater(n, 0)


if __name__ == "__main__":
    unittest.main()
