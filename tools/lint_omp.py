#!/usr/bin/env python3
"""OpenMP determinism lint for the kernel and exec layers.

The runtime's batching contract (runtime/batcher.hpp) and the paper's
bit-identity experiments require every kernel to produce byte-for-byte
identical results across runs and across worker counts. Three OpenMP
habits silently break that:

  R1  `nowait` removes the implicit barrier at the end of a worksharing
      construct — downstream code can observe partially-written output.
      Always forbidden.

  R2  `reduction(...)` lets the runtime combine partial results in any
      association order; floating-point addition is not associative, so
      run-to-run results drift. Forbidden unless the pragma's file is
      allowlisted (a kernel may legitimately reduce over integers).

  R3  a `for` worksharing construct without `schedule(static...)` lets
      the runtime rebalance iterations dynamically. That is only
      deterministic when every iteration writes a disjoint slice of the
      output. Such loops must carry a justification comment containing
      `omp-determinism:` within the JUSTIFY_WINDOW lines above the
      pragma (explaining why rows/fibers are disjoint), or be
      allowlisted.

Allowlist format — tools/omp_lint_allowlist.txt, one entry per line:

    <path-relative-to-repo-root> <rule>

where <rule> is `reduction` or `schedule`. `#` starts a comment. An
entry waives that rule for every pragma in the file; unused entries are
an error so the allowlist cannot rot.

Exit status: 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

# Directories holding OpenMP parallel loops that feed bit-identity-gated
# results, plus the telemetry layer (src/obs must stay lock/atomic-based:
# an OpenMP region on a metrics path would need the same justification).
# Other directories (bench/, tests/) may use OpenMP freely.
SCAN_DIRS = ("src/kernels", "src/exec", "src/obs")
SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h"}

# How many lines above a pragma a justification comment may sit.
JUSTIFY_WINDOW = 8

JUSTIFY_MARKER = "omp-determinism:"

ALLOWED_RULES = ("reduction", "schedule")

_PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+omp\b")
_SCHEDULE_STATIC_RE = re.compile(r"\bschedule\s*\(\s*static\b")
_SCHEDULE_ANY_RE = re.compile(r"\bschedule\s*\(")
_REDUCTION_RE = re.compile(r"\breduction\s*\(")
_NOWAIT_RE = re.compile(r"\bnowait\b")
# A worksharing loop: `omp for`, `omp parallel for`, `omp for simd`, ...
_FOR_CONSTRUCT_RE = re.compile(r"#\s*pragma\s+omp\s+(?:parallel\s+)?for\b")


@dataclasses.dataclass
class Pragma:
    """One logical `#pragma omp` directive (continuations joined)."""

    line: int  # 1-based line of the pragma's first physical line
    text: str  # the joined directive text
    context: list[str]  # the JUSTIFY_WINDOW physical lines above it


@dataclasses.dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def parse_pragmas(text: str) -> list[Pragma]:
    """Every `#pragma omp` in `text`, with backslash continuations joined."""
    lines = text.splitlines()
    pragmas = []
    i = 0
    while i < len(lines):
        if _PRAGMA_RE.match(lines[i]):
            start = i
            joined = lines[i].rstrip()
            while joined.endswith("\\") and i + 1 < len(lines):
                i += 1
                joined = joined[:-1].rstrip() + " " + lines[i].strip()
            context = lines[max(0, start - JUSTIFY_WINDOW):start]
            pragmas.append(Pragma(line=start + 1, text=joined, context=context))
        i += 1
    return pragmas


def _has_justification(pragma: Pragma) -> bool:
    return any(JUSTIFY_MARKER in line for line in pragma.context)


def lint_text(path: str, text: str,
              allowlist: set[tuple[str, str]]) -> list[Violation]:
    """Violations in one file. `allowlist` holds (path, rule) waivers."""
    out = []
    for p in parse_pragmas(text):
        if _NOWAIT_RE.search(p.text):
            out.append(Violation(
                path, p.line, "nowait",
                "`nowait` drops the worksharing barrier; downstream code "
                "may read partially-written output (no waiver exists for "
                "this rule)"))
        if _REDUCTION_RE.search(p.text) and (path, "reduction") not in allowlist:
            out.append(Violation(
                path, p.line, "reduction",
                "`reduction` combines partials in runtime-chosen order, "
                "breaking floating-point bit-identity; allowlist the file "
                "if the reduction is over integers"))
        if _FOR_CONSTRUCT_RE.search(p.text):
            if _SCHEDULE_STATIC_RE.search(p.text):
                pass  # static schedule: iteration->thread map is fixed
            elif (path, "schedule") in allowlist or _has_justification(p):
                pass  # justified dynamic schedule (disjoint output rows)
            else:
                kind = ("non-static" if _SCHEDULE_ANY_RE.search(p.text)
                        else "unspecified")
                out.append(Violation(
                    path, p.line, "schedule",
                    f"worksharing loop with {kind} schedule: use "
                    "schedule(static[,N]), or add a comment containing "
                    f"`{JUSTIFY_MARKER}` within {JUSTIFY_WINDOW} lines "
                    "above the pragma explaining why iterations write "
                    "disjoint output"))
    return out


def load_allowlist(path: pathlib.Path) -> set[tuple[str, str]]:
    entries = set()
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2 or parts[1] not in ALLOWED_RULES:
            raise SystemExit(
                f"{path}:{lineno}: malformed allowlist entry {raw!r} "
                f"(want `<path> <rule>` with rule in {ALLOWED_RULES})")
        entries.add((parts[0], parts[1]))
    return entries


def scan_tree(root: pathlib.Path,
              allowlist: set[tuple[str, str]]) -> tuple[list[Violation], int]:
    """Lint every source file under SCAN_DIRS. Returns (violations, #pragmas).

    Unused allowlist entries are violations too: a waiver that matches
    nothing is either a typo or a leftover, and both hide real findings.
    """
    violations = []
    used = set()
    n_pragmas = 0
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for f in sorted(base.rglob("*")):
            if f.suffix not in SOURCE_SUFFIXES:
                continue
            rel = f.relative_to(root).as_posix()
            text = f.read_text()
            n_pragmas += len(parse_pragmas(text))
            file_violations = lint_text(rel, text, allowlist)
            violations.extend(file_violations)
            for entry in allowlist:
                if entry[0] == rel:
                    used.add(entry)
    for entry in sorted(allowlist - used):
        violations.append(Violation(
            entry[0], 0, "allowlist",
            f"unused allowlist entry for rule `{entry[1]}` (file not "
            "scanned or no longer exists) — remove it"))
    return violations, n_pragmas


def main(argv: list[str] | None = None) -> int:
    here = pathlib.Path(__file__).resolve()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path, default=here.parent.parent,
                    help="repository root (default: the tools/ parent)")
    ap.add_argument("--allowlist", type=pathlib.Path, default=None,
                    help="allowlist file (default: <root>/tools/"
                         "omp_lint_allowlist.txt)")
    args = ap.parse_args(argv)
    root = args.root.resolve()
    allowlist_path = args.allowlist or root / "tools" / "omp_lint_allowlist.txt"
    allowlist = load_allowlist(allowlist_path)
    violations, n_pragmas = scan_tree(root, allowlist)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"lint_omp: {len(violations)} violation(s) across "
              f"{n_pragmas} pragma(s)", file=sys.stderr)
        return 1
    print(f"lint_omp: OK ({n_pragmas} pragma(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
